// Command asitop is a live terminal dashboard for a running asifmd: it
// polls the daemon's /obs.json endpoint and renders the windowed metric
// rates (with client-side sparklines), the serving layer's staleness
// SLO, the per-region simulation load, and the structured event tail —
// plain ANSI, no terminal library.
//
// Usage:
//
//	asitop                                  # watch http://localhost:8080
//	asitop -url http://host:9000            # another daemon
//	asitop -interval 500ms                  # faster refresh
//	asitop -once                            # print one frame and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "asifmd base URL")
	interval := flag.Duration("interval", time.Second, "poll and redraw interval")
	events := flag.Int("events", 8, "event-log tail length to display")
	once := flag.Bool("once", false, "print a single frame and exit (no screen clearing)")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	hist := map[string][]float64{}

	for {
		doc, err := fetch(client, *url, *events)
		frame := ""
		if err != nil {
			frame = fmt.Sprintf("asitop: %v (retrying every %s)\n", err, *interval)
		} else {
			push(hist, doc.Rates)
			frame = render(doc, hist, *url)
		}
		if *once {
			fmt.Print(frame)
			if err != nil {
				os.Exit(1)
			}
			return
		}
		// Clear + home, then the frame: a full repaint per tick keeps the
		// renderer stateless.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, base string, events int) (*obs.DashDoc, error) {
	resp, err := client.Get(fmt.Sprintf("%s/obs.json?events=%d", strings.TrimRight(base, "/"), events))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("GET /obs.json: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var doc obs.DashDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding /obs.json: %w", err)
	}
	return &doc, nil
}

// sparkCap bounds the per-metric client-side rate history.
const sparkCap = 32

// push appends this frame's rates to the sparkline histories.
func push(hist map[string][]float64, rates []obs.Rate) {
	for _, r := range rates {
		h := append(hist[r.Name], r.PerSec)
		if len(h) > sparkCap {
			h = h[len(h)-sparkCap:]
		}
		hist[r.Name] = h
	}
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders a history as a fixed-width sparkline scaled to its own
// maximum.
func spark(h []float64) string {
	max := 0.0
	for _, v := range h {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range h {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

func render(doc *obs.DashDoc, hist map[string][]float64, url string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "asitop — %s — %s\n", url, doc.Wall.Format(time.TimeOnly))
	fmt.Fprintf(&b, "gen %d   sim %s   window %.1fs   scrapes %d\n\n",
		doc.Gen, sim.Duration(doc.SimPS), doc.WindowSec, doc.Scrapes)

	sv := doc.Serving
	fmt.Fprintf(&b, "serving   installs %-6d leaves %-6d subscribers %-4d resyncs %-4d deliveries %d\n",
		sv.Installs, sv.Leaves, sv.Subscribers, sv.Resyncs, sv.Deliveries)
	fmt.Fprintf(&b, "staleness p50 %-4d p99 %-4d max %-4d generations behind (%d subscribers)\n",
		sv.Staleness.P50, sv.Staleness.P99, sv.Staleness.Max, sv.Staleness.Subscribers)
	if sv.DeliverLatency.Count > 0 {
		fmt.Fprintf(&b, "deliver   p50 %-10s p99 %-10s (%d observations)\n",
			time.Duration(sv.DeliverP50NS), time.Duration(sv.DeliverP99NS), sv.DeliverLatency.Count)
	}
	assimBlock(&b, doc)

	if len(doc.Regions) > 0 {
		b.WriteString("\nregions   ")
		for _, r := range doc.Regions {
			fmt.Fprintf(&b, "[%d] %d ev %.0f/s   ", r.Region, r.Events, r.PerSec)
		}
		b.WriteString("\n")
	}

	if len(doc.Rates) > 0 {
		b.WriteString("\nrates (windowed, with local history)\n")
		// Busiest first; names keep the table readable at any width.
		rates := append([]obs.Rate(nil), doc.Rates...)
		sort.SliceStable(rates, func(i, j int) bool { return rates[i].PerSec > rates[j].PerSec })
		for _, r := range rates {
			fmt.Fprintf(&b, "  %-28s %12.1f/s  %s\n", r.Name, r.PerSec, spark(hist[r.Name]))
		}
	}

	if len(doc.Quantiles) > 0 {
		b.WriteString("\nlatency (windowed percentile estimates)\n")
		for _, q := range doc.Quantiles {
			fmt.Fprintf(&b, "  %-28s p50 %-12s p90 %-12s p99 %-12s n=%d\n",
				q.Name, quantity(q.P50, q.Unit), quantity(q.P90, q.Unit), quantity(q.P99, q.Unit), q.Count)
		}
	}

	if len(doc.Events) > 0 {
		fmt.Fprintf(&b, "\nevents (%d logged, %d dropped)\n", doc.EventsLogged, doc.EventsDropped)
		for _, e := range doc.Events {
			detail := e.Detail
			if detail != "" {
				detail = "  " + detail
			}
			fmt.Fprintf(&b, "  %s  gen %-5d %-20s%s\n", e.Wall.Format(time.TimeOnly), e.Gen, e.Kind, detail)
		}
	}
	return b.String()
}

// assimBlock renders the continuous-assimilation view when the daemon
// runs the coalescing partial FM: the per-node DB-staleness percentile
// gauges (published every scrape for any algorithm) and, when PI-5s
// flowed in the window, the sustained assimilation rates with the
// batch-size percentiles.
func assimBlock(b *strings.Builder, doc *obs.DashDoc) {
	gauge := func(name string) (int64, bool) {
		for _, g := range doc.Gauges {
			if g.Name == name {
				return g.Value, true
			}
		}
		return 0, false
	}
	rate := func(name string) float64 {
		for _, r := range doc.Rates {
			if r.Name == name {
				return r.PerSec
			}
		}
		return 0
	}
	if max, ok := gauge("fm.db.staleness.max"); ok {
		p50, _ := gauge("fm.db.staleness.p50")
		p99, _ := gauge("fm.db.staleness.p99")
		fmt.Fprintf(b, "db-stale  p50 %-10s p99 %-10s max %-10s (per-node last-validated age, sim)\n",
			sim.Duration(p50), sim.Duration(p99), sim.Duration(max))
	}
	if ev := rate("fm.assim.events"); ev > 0 {
		line := fmt.Sprintf("assim     %.1f PI-5/s assimilated   %.1f/s coalesced   %.1f flushes/s",
			ev, rate("fm.assim.events.coalesced"), rate("fm.assim.flushes"))
		for _, q := range doc.Quantiles {
			if q.Name == "fm.assim.batch.size" {
				line += fmt.Sprintf("   batch p50 %.0f p99 %.0f", q.P50, q.P99)
				break
			}
		}
		b.WriteString(line + "\n")
	}
}

// quantity formats a histogram quantile in its unit ("ps" and "ns" get
// duration rendering; anything else is plain).
func quantity(v float64, unit string) string {
	switch unit {
	case "ps":
		return sim.Duration(v).String()
	case "ns":
		return time.Duration(v).String()
	default:
		return fmt.Sprintf("%.1f%s", v, unit)
	}
}
