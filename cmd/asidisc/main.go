// Command asidisc runs a single fabric discovery simulation and prints
// its measurements: topology, algorithm, processing factors and the
// optional topological change are selectable.
//
// Usage:
//
//	asidisc -topo "8x8 mesh" -alg parallel
//	asidisc -topo "4-port 3-tree" -alg serial-packet -change remove -seed 3
//	asidisc -topo "3x3 mesh" -alg serial-device -timeline
//	asidisc -topo "4x4 mesh" -loss 1e-3 -retries 3
//	asidisc -topo "4x4 mesh" -retries 3 -flap 0,50,100
//	asidisc -topo "3x3 mesh" -telemetry -json   # machine-readable run report
//	asidisc -topo "3x3 mesh" -spans             # causal span Gantt + critical path
//	asidisc -topo "3x3 mesh" -spans-out t.json  # Chrome/Perfetto trace (see asitrace)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/trace"
)

func main() {
	topoName := flag.String("topo", "3x3 mesh", "topology name (see asitopo -list)")
	alg := flag.String("alg", "parallel", "discovery algorithm: "+strings.Join(cli.AlgorithmNames(), ", "))
	change := flag.String("change", "none", "topological change: "+strings.Join(cli.ChangeNames(), ", "))
	seed := flag.Uint64("seed", 1, "random seed (selects the changed switch)")
	fmFactor := flag.Float64("fm-factor", 1, "FM processing speed factor")
	devFactor := flag.Float64("dev-factor", 1, "device processing speed factor")
	timeline := flag.Bool("timeline", false, "print the FM packet-processing timeline")
	traceN := flag.Int("trace", 0, "record and print up to N packet-level fabric events")
	loss := flag.Float64("loss", 0, "uniform per-link packet loss probability (0 = lossless)")
	retries := flag.Int("retries", 0, "max timeout retries per request (0 = paper behaviour: fail immediately)")
	backoffUS := flag.Float64("retry-backoff", 0, "base retry backoff in microseconds (0 = default 100us; doubles per attempt)")
	flapSpec := flag.String("flap", "", "flap a link: \"link,at_us,dur_us\" (see -trace for link ids)")
	tele := flag.Bool("telemetry", false, "collect run telemetry (per-phase FM histograms, fabric counters)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run report on stdout")
	spans := flag.Bool("spans", false, "trace causal PI-4 spans and print the FM timeline report")
	spansOut := flag.String("spans-out", "", "trace causal spans and write a Chrome trace-event JSON file (implies span tracing)")
	flag.Parse()

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(code)
	}
	kind, err := cli.Algorithm(*alg)
	if err != nil {
		fail(2, err)
	}
	ch, err := cli.Change(*change)
	if err != nil {
		fail(2, err)
	}
	if _, err := cli.Topology(*topoName); err != nil {
		fail(2, err)
	}

	opts := []experiment.Option{
		experiment.WithSeed(*seed),
		experiment.WithChange(ch),
		experiment.WithFactors(*fmFactor, *devFactor),
		experiment.WithLoss(*loss),
		experiment.WithRetries(*retries, sim.Micros(*backoffUS)),
	}
	if *flapSpec != "" {
		flap, err := cli.Flap(*flapSpec)
		if err != nil {
			fail(2, err)
		}
		plan := fabric.Uniform(*loss)
		plan.Flaps = append(plan.Flaps, flap)
		opts = append(opts, experiment.WithFaults(&plan))
	}
	var buf *trace.Buffer
	if *traceN > 0 {
		buf = &trace.Buffer{Max: *traceN}
		opts = append(opts, experiment.WithTrace(buf))
	}
	if *tele {
		opts = append(opts, experiment.WithTelemetry())
	}
	if *spans || *spansOut != "" {
		opts = append(opts, experiment.WithSpans())
	}
	cfg, err := experiment.NewConfig(*topoName, kind, opts...)
	if err != nil {
		fail(2, err)
	}
	out := experiment.RunConfig(cfg)

	if *spansOut != "" && out.Spans != nil {
		fh, err := os.Create(*spansOut)
		if err != nil {
			fail(1, err)
		}
		if err := span.WriteChrome(fh, *out.Spans); err != nil {
			fail(1, err)
		}
		if err := fh.Close(); err != nil {
			fail(1, err)
		}
	}

	if *jsonOut {
		if err := experiment.NewRunReport(out).JSON(os.Stdout); err != nil {
			fail(1, err)
		}
		if out.Err != nil {
			os.Exit(1)
		}
		return
	}
	if out.Err != nil {
		fail(1, out.Err)
	}

	fmt.Printf("topology:        %s (%d devices, %d switches)\n", *topoName, out.PhysicalNodes, out.Switches)
	fmt.Printf("algorithm:       %v (FM factor %.2f, device factor %.2f)\n", kind, *fmFactor, *devFactor)
	fmt.Printf("change:          %v (seed %d)\n", ch, *seed)
	fmt.Printf("active nodes:    %d\n", out.ActiveNodes)
	if ch != experiment.NoChange {
		fmt.Printf("initial run:     %v\n", out.Initial)
	}
	fmt.Printf("measured run:    %v\n", out.Result)
	fmt.Printf("discovery time:  %.6f s\n", out.Result.Duration.Seconds())
	fmt.Printf("mgmt traffic:    %d pkts / %d B sent, %d pkts / %d B received\n",
		out.Result.PacketsSent, out.Result.BytesSent,
		out.Result.PacketsReceived, out.Result.BytesReceived)
	fmt.Printf("avg FM proc:     %.2f us over %d packets\n",
		out.Result.AvgFMProcessing().Microseconds(), out.Result.Processed)
	if out.Result.TimedOut > 0 {
		fmt.Printf("timeouts:        %d\n", out.Result.TimedOut)
	}
	if out.Result.Retries > 0 {
		fmt.Printf("retries:         %d\n", out.Result.Retries)
	}
	if out.Result.GaveUp > 0 {
		fmt.Printf("gave up:         %d\n", out.Result.GaveUp)
	}
	if out.Result.Stale > 0 {
		fmt.Printf("stale replies:   %d\n", out.Result.Stale)
	}
	if out.Telemetry != nil {
		printTelemetry(out)
	}
	if *timeline {
		fmt.Println("\npacket#  processed-at (s)")
		for _, p := range out.Result.Timeline {
			fmt.Printf("%7d  %.9f\n", p.Index, p.At.Seconds())
		}
	}
	if buf != nil {
		fmt.Println("\nfabric trace:")
		if err := buf.WriteText(os.Stdout); err != nil {
			fail(1, err)
		}
		if n := buf.Dropped(); n > 0 {
			fmt.Printf("trace truncated: %d events dropped (raise -trace beyond %d)\n", n, *traceN)
		}
	}
	if *spans && out.Spans != nil {
		a, err := span.Analyze(*out.Spans)
		if err != nil {
			fail(1, err)
		}
		fmt.Println("\ncausal spans:")
		if err := span.WriteReport(os.Stdout, a, span.GanttOptions{}); err != nil {
			fail(1, err)
		}
		if out.Spans.Dropped > 0 {
			fmt.Printf("span log truncated: %d spans dropped\n", out.Spans.Dropped)
		}
	}
}

// printTelemetry summarizes the run's metric snapshot as text; the full
// detail (bucket counts, per-link vectors) is available under -json.
func printTelemetry(out experiment.Outcome) {
	s := out.Telemetry
	fmt.Println("\ntelemetry:")
	for _, c := range s.Counters {
		if c.Value > 0 {
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		fmt.Printf("  %-28s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		mean := float64(h.Sum) / float64(h.Count)
		fmt.Printf("  %-28s n=%-6d mean=%.3fus min=%.3fus max=%.3fus\n",
			h.Name, h.Count,
			sim.Duration(mean).Microseconds(),
			sim.Duration(h.Min).Microseconds(),
			sim.Duration(h.Max).Microseconds())
	}
}
