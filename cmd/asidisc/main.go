// Command asidisc runs a single fabric discovery simulation and prints
// its measurements: topology, algorithm, processing factors and the
// optional topological change are selectable.
//
// Usage:
//
//	asidisc -topo "8x8 mesh" -alg parallel
//	asidisc -topo "4-port 3-tree" -alg serial-packet -change remove -seed 3
//	asidisc -topo "3x3 mesh" -alg serial-device -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/topo"
	"repro/internal/trace"
)

func parseAlg(s string) (core.Kind, error) {
	switch strings.ToLower(s) {
	case "serial-packet", "sp":
		return core.SerialPacket, nil
	case "serial-device", "sd":
		return core.SerialDevice, nil
	case "parallel", "p":
		return core.Parallel, nil
	case "partial":
		return core.Partial, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (serial-packet, serial-device, parallel, partial)", s)
	}
}

func parseChange(s string) (experiment.Change, error) {
	switch strings.ToLower(s) {
	case "none":
		return experiment.NoChange, nil
	case "remove":
		return experiment.RemoveSwitch, nil
	case "add":
		return experiment.AddSwitch, nil
	default:
		return 0, fmt.Errorf("unknown change %q (none, remove, add)", s)
	}
}

func main() {
	topoName := flag.String("topo", "3x3 mesh", "topology name (see asitopo -list)")
	alg := flag.String("alg", "parallel", "discovery algorithm: serial-packet, serial-device, parallel, partial")
	change := flag.String("change", "none", "topological change: none, remove, add")
	seed := flag.Uint64("seed", 1, "random seed (selects the changed switch)")
	fmFactor := flag.Float64("fm-factor", 1, "FM processing speed factor")
	devFactor := flag.Float64("dev-factor", 1, "device processing speed factor")
	timeline := flag.Bool("timeline", false, "print the FM packet-processing timeline")
	traceN := flag.Int("trace", 0, "record and print up to N packet-level fabric events")
	flag.Parse()

	kind, err := parseAlg(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ch, err := parseChange(*change)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := topo.ByName(*topoName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var buf *trace.Buffer
	spec := experiment.RunSpec{
		Topology:     *topoName,
		Algorithm:    kind,
		Change:       ch,
		Seed:         *seed,
		FMFactor:     *fmFactor,
		DeviceFactor: *devFactor,
	}
	if *traceN > 0 {
		buf = &trace.Buffer{Max: *traceN}
		spec.Trace = buf
	}
	out := experiment.Run(spec)
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}

	fmt.Printf("topology:        %s (%d devices, %d switches)\n", *topoName, out.PhysicalNodes, out.Switches)
	fmt.Printf("algorithm:       %v (FM factor %.2f, device factor %.2f)\n", kind, *fmFactor, *devFactor)
	fmt.Printf("change:          %v (seed %d)\n", ch, *seed)
	fmt.Printf("active nodes:    %d\n", out.ActiveNodes)
	if ch != experiment.NoChange {
		fmt.Printf("initial run:     %v\n", out.Initial)
	}
	fmt.Printf("measured run:    %v\n", out.Result)
	fmt.Printf("discovery time:  %.6f s\n", out.Result.Duration.Seconds())
	fmt.Printf("mgmt traffic:    %d pkts / %d B sent, %d pkts / %d B received\n",
		out.Result.PacketsSent, out.Result.BytesSent,
		out.Result.PacketsReceived, out.Result.BytesReceived)
	fmt.Printf("avg FM proc:     %.2f us over %d packets\n",
		out.Result.AvgFMProcessing().Microseconds(), out.Result.Processed)
	if out.Result.TimedOut > 0 {
		fmt.Printf("timeouts:        %d\n", out.Result.TimedOut)
	}
	if *timeline {
		fmt.Println("\npacket#  processed-at (s)")
		for _, p := range out.Result.Timeline {
			fmt.Printf("%7d  %.9f\n", p.Index, p.At.Seconds())
		}
	}
	if buf != nil {
		fmt.Println("\nfabric trace:")
		if err := buf.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
