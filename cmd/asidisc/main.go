// Command asidisc runs a single fabric discovery simulation and prints
// its measurements: topology, algorithm, processing factors and the
// optional topological change are selectable.
//
// Usage:
//
//	asidisc -topo "8x8 mesh" -alg parallel
//	asidisc -topo "4-port 3-tree" -alg serial-packet -change remove -seed 3
//	asidisc -topo "3x3 mesh" -alg serial-device -timeline
//	asidisc -topo "4x4 mesh" -loss 1e-3 -retries 3
//	asidisc -topo "4x4 mesh" -retries 3 -flap 0,50,100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func parseAlg(s string) (core.Kind, error) {
	switch strings.ToLower(s) {
	case "serial-packet", "sp":
		return core.SerialPacket, nil
	case "serial-device", "sd":
		return core.SerialDevice, nil
	case "parallel", "p":
		return core.Parallel, nil
	case "partial":
		return core.Partial, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (serial-packet, serial-device, parallel, partial)", s)
	}
}

// parseFlap parses "link,at_us,dur_us" into a scheduled link flap.
func parseFlap(s string) (fabric.Flap, error) {
	var link int
	var atUS, durUS float64
	if _, err := fmt.Sscanf(s, "%d,%g,%g", &link, &atUS, &durUS); err != nil {
		return fabric.Flap{}, fmt.Errorf("bad -flap %q (want link,at_us,dur_us): %v", s, err)
	}
	return fabric.Flap{
		Link:     link,
		At:       sim.Time(sim.Micros(atUS)),
		Duration: sim.Micros(durUS),
	}, nil
}

func parseChange(s string) (experiment.Change, error) {
	switch strings.ToLower(s) {
	case "none":
		return experiment.NoChange, nil
	case "remove":
		return experiment.RemoveSwitch, nil
	case "add":
		return experiment.AddSwitch, nil
	default:
		return 0, fmt.Errorf("unknown change %q (none, remove, add)", s)
	}
}

func main() {
	topoName := flag.String("topo", "3x3 mesh", "topology name (see asitopo -list)")
	alg := flag.String("alg", "parallel", "discovery algorithm: serial-packet, serial-device, parallel, partial")
	change := flag.String("change", "none", "topological change: none, remove, add")
	seed := flag.Uint64("seed", 1, "random seed (selects the changed switch)")
	fmFactor := flag.Float64("fm-factor", 1, "FM processing speed factor")
	devFactor := flag.Float64("dev-factor", 1, "device processing speed factor")
	timeline := flag.Bool("timeline", false, "print the FM packet-processing timeline")
	traceN := flag.Int("trace", 0, "record and print up to N packet-level fabric events")
	loss := flag.Float64("loss", 0, "uniform per-link packet loss probability (0 = lossless)")
	retries := flag.Int("retries", 0, "max timeout retries per request (0 = paper behaviour: fail immediately)")
	backoffUS := flag.Float64("retry-backoff", 0, "base retry backoff in microseconds (0 = default 100us; doubles per attempt)")
	flapSpec := flag.String("flap", "", "flap a link: \"link,at_us,dur_us\" (see -trace for link ids)")
	flag.Parse()

	kind, err := parseAlg(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ch, err := parseChange(*change)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := topo.ByName(*topoName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var buf *trace.Buffer
	spec := experiment.RunSpec{
		Topology:     *topoName,
		Algorithm:    kind,
		Change:       ch,
		Seed:         *seed,
		FMFactor:     *fmFactor,
		DeviceFactor: *devFactor,
		LossRate:     *loss,
		MaxRetries:   *retries,
		RetryBackoff: sim.Micros(*backoffUS),
	}
	if *flapSpec != "" {
		flap, err := parseFlap(*flapSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		plan := fabric.Uniform(*loss)
		plan.Flaps = append(plan.Flaps, flap)
		spec.Faults = &plan
	}
	if *traceN > 0 {
		buf = &trace.Buffer{Max: *traceN}
		spec.Trace = buf
	}
	out := experiment.Run(spec)
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}

	fmt.Printf("topology:        %s (%d devices, %d switches)\n", *topoName, out.PhysicalNodes, out.Switches)
	fmt.Printf("algorithm:       %v (FM factor %.2f, device factor %.2f)\n", kind, *fmFactor, *devFactor)
	fmt.Printf("change:          %v (seed %d)\n", ch, *seed)
	fmt.Printf("active nodes:    %d\n", out.ActiveNodes)
	if ch != experiment.NoChange {
		fmt.Printf("initial run:     %v\n", out.Initial)
	}
	fmt.Printf("measured run:    %v\n", out.Result)
	fmt.Printf("discovery time:  %.6f s\n", out.Result.Duration.Seconds())
	fmt.Printf("mgmt traffic:    %d pkts / %d B sent, %d pkts / %d B received\n",
		out.Result.PacketsSent, out.Result.BytesSent,
		out.Result.PacketsReceived, out.Result.BytesReceived)
	fmt.Printf("avg FM proc:     %.2f us over %d packets\n",
		out.Result.AvgFMProcessing().Microseconds(), out.Result.Processed)
	if out.Result.TimedOut > 0 {
		fmt.Printf("timeouts:        %d\n", out.Result.TimedOut)
	}
	if out.Result.Retries > 0 {
		fmt.Printf("retries:         %d\n", out.Result.Retries)
	}
	if out.Result.GaveUp > 0 {
		fmt.Printf("gave up:         %d\n", out.Result.GaveUp)
	}
	if out.Result.Stale > 0 {
		fmt.Printf("stale replies:   %d\n", out.Result.Stale)
	}
	if *timeline {
		fmt.Println("\npacket#  processed-at (s)")
		for _, p := range out.Result.Timeline {
			fmt.Printf("%7d  %.9f\n", p.Index, p.At.Seconds())
		}
	}
	if buf != nil {
		fmt.Println("\nfabric trace:")
		if err := buf.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
