// Command asitrace reconstructs the FM timeline from a Chrome
// trace-event file written by `asidisc -spans-out`: it renders the
// per-request ASCII Gantt chart, extracts the critical path through the
// FM's serial work queue, and totals time by span kind. The same file
// loads unmodified in Perfetto or chrome://tracing for interactive
// inspection.
//
// Usage:
//
//	asidisc -topo "3x3 mesh" -alg parallel -spans-out t.json
//	asitrace t.json
//	asitrace -width 120 -rows 40 t.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/span"
)

func main() {
	width := flag.Int("width", 0, "Gantt chart width in cells (0 = default)")
	rows := flag.Int("rows", 0, "max request rows per run (0 = unlimited)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags] trace.json\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	fh, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fh.Close()
	l, err := span.ReadChrome(fh)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a, err := span.Analyze(l)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := span.WriteReport(os.Stdout, a, span.GanttOptions{Width: *width, MaxRows: *rows}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if l.Dropped > 0 {
		fmt.Printf("span log truncated: %d spans dropped\n", l.Dropped)
	}
}
