// Command asibench regenerates every table and figure of the paper's
// evaluation (section 4) plus the future-work extension experiments, as
// aligned text tables or CSV.
//
// Usage:
//
//	asibench                  # run everything
//	asibench -exp fig6        # one experiment (see -list)
//	asibench -seeds 8         # more repetitions per change scenario
//	asibench -csv             # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiment"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
	seeds := flag.Int("seeds", 4, "repetitions of each change scenario")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("o", "", "also write one .txt (and .csv) file per report into this directory")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, r := range experiment.Runners() {
			fmt.Printf("%-16s %s\n", r.ID, r.Desc)
		}
		return
	}

	opts := experiment.Opts{Seeds: *seeds, Workers: *workers}
	var runners []experiment.Runner
	if *exp == "all" {
		runners = experiment.Runners()
	} else {
		r, err := experiment.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []experiment.Runner{r}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, r := range runners {
		// Time each experiment and derive simulator throughput from the
		// engine-processed event tally. Stderr keeps stdout
		// machine-readable under -csv.
		experiment.TakeProcessedEvents()
		start := time.Now()
		reports := r.Run(opts)
		elapsed := time.Since(start)
		events := experiment.TakeProcessedEvents()
		fmt.Fprintf(os.Stderr, "%-16s %8.2fs wall  %12d events  %10.0f events/s\n",
			r.ID, elapsed.Seconds(), events,
			float64(events)/elapsed.Seconds())
		for _, rep := range reports {
			var err error
			if *csv {
				fmt.Printf("# %s: %s\n", rep.ID, rep.Title)
				err = rep.CSV(os.Stdout)
				fmt.Println()
			} else {
				err = rep.Render(os.Stdout)
			}
			if err == nil && *outDir != "" {
				err = writeReportFiles(*outDir, rep)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// writeReportFiles persists one report as <dir>/<id>.txt and .csv.
func writeReportFiles(dir string, rep experiment.Report) error {
	txt, err := os.Create(filepath.Join(dir, rep.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := rep.Render(txt); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	return rep.CSV(csvf)
}
