// Command asibench regenerates every table and figure of the paper's
// evaluation (section 4) plus the future-work extension experiments, as
// aligned text tables, CSV, or one machine-readable JSON document.
//
// Usage:
//
//	asibench                  # run everything
//	asibench -exp fig6        # one experiment (see -list)
//	asibench -seeds 8         # more repetitions per change scenario
//	asibench -csv             # machine-readable output
//	asibench -json            # one run-report JSON envelope on stdout
//	asibench -debug :6060     # serve net/http/pprof and expvar while running
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/experiment"
)

// benchEvents exposes the cumulative processed-event tally on the -debug
// endpoint, next to the memstats expvar publishes by default.
var benchEvents = expvar.NewInt("asibench.events")

func main() {
	var common cli.Common
	exp := flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
	seeds := flag.Int("seeds", 4, "repetitions of each change scenario")
	common.RegisterWorkers(flag.CommandLine)
	common.RegisterRegions(flag.CommandLine)
	common.RegisterJSON(flag.CommandLine)
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("o", "", "also write one .txt (and .csv) file per report into this directory")
	list := flag.Bool("list", false, "list experiment ids and exit")
	debugAddr := flag.String("debug", "", "serve net/http/pprof and expvar on this address while running (e.g. :6060)")
	flag.Parse()
	if err := common.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	jsonOut := &common.JSON

	if *list {
		for _, r := range experiment.Runners() {
			heavy := ""
			if r.Heavy {
				heavy = "  [heavy: run explicitly with -exp]"
			}
			fmt.Printf("%-16s %s%s\n", r.ID, r.Desc, heavy)
		}
		return
	}

	if *debugAddr != "" {
		// DefaultServeMux already carries /debug/pprof/ (net/http/pprof)
		// and /debug/vars (expvar) from their package imports.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/pprof and /debug/vars\n", *debugAddr)
	}

	opts := experiment.Opts{Seeds: *seeds, Workers: common.Workers, Regions: common.Regions}
	var runners []experiment.Runner
	if *exp == "all" {
		for _, r := range experiment.Runners() {
			if r.Heavy {
				fmt.Fprintf(os.Stderr, "skipping heavy experiment %s (run it with -exp %s)\n", r.ID, r.ID)
				continue
			}
			runners = append(runners, r)
		}
	} else {
		r, err := experiment.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []experiment.Runner{r}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var (
		all         []experiment.Report
		totalEvents uint64
		totalWall   time.Duration
	)
	for _, r := range runners {
		// Time each experiment and derive simulator throughput from the
		// engine-processed event tally. Stderr keeps stdout
		// machine-readable under -csv and -json.
		experiment.TakeProcessedEvents()
		start := time.Now()
		reports := r.Run(opts)
		elapsed := time.Since(start)
		events := experiment.TakeProcessedEvents()
		totalEvents += events
		totalWall += elapsed
		benchEvents.Add(int64(events))
		fmt.Fprintf(os.Stderr, "%-16s %8.2fs wall  %12d events  %10.0f events/s\n",
			r.ID, elapsed.Seconds(), events,
			float64(events)/elapsed.Seconds())
		// Stamp each report with its experiment's wall-clock cost and
		// simulator throughput, so the -json envelope carries them per
		// experiment (the renderers ignore the fields; goldens are safe).
		for i := range reports {
			reports[i].WallSeconds = elapsed.Seconds()
			reports[i].Events = events
			if elapsed > 0 {
				reports[i].EventsPerSec = float64(events) / elapsed.Seconds()
			}
		}
		for _, rep := range reports {
			var err error
			switch {
			case *jsonOut:
				all = append(all, rep)
			case *csv:
				fmt.Printf("# %s: %s\n", rep.ID, rep.Title)
				err = rep.CSV(os.Stdout)
				fmt.Println()
			default:
				err = rep.Render(os.Stdout)
			}
			if err == nil && *outDir != "" {
				err = writeReportFiles(*outDir, rep)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut {
		rr := experiment.NewReportsJSON(all)
		rr.Events = totalEvents
		if totalWall > 0 {
			rr.EventsPerSec = float64(totalEvents) / totalWall.Seconds()
		}
		if err := rr.JSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeReportFiles persists one report as <dir>/<id>.txt and .csv.
func writeReportFiles(dir string, rep experiment.Report) error {
	txt, err := os.Create(filepath.Join(dir, rep.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := rep.Render(txt); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	return rep.CSV(csvf)
}
