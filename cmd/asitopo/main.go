// Command asitopo inspects the fabric topologies: the paper's Table 1
// catalogue, the extended dragonfly and auto-designed fat-tree families,
// and any parametric instance — device counts, link counts, degree
// distribution and, with -v, the full cabling.
//
// Usage:
//
//	asitopo -list
//	asitopo -topo "4-port 3-tree"
//	asitopo -topo "6x6 torus" -v
//	asitopo -topo "dragonfly 16x64"
//	asitopo -topo "autofat 24x288"
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asi"
	"repro/internal/cli"
	"repro/internal/topo"
)

func main() {
	name := flag.String("topo", "", "topology name to inspect")
	list := flag.Bool("list", false, "list the catalogue topologies and parametric families")
	verbose := flag.Bool("v", false, "print every link")
	flag.Parse()

	if *list || *name == "" {
		fmt.Printf("%-16s %9s %10s %7s\n", "Topology", "Switches", "Endpoints", "Total")
		for _, s := range topo.Catalogue() {
			fmt.Printf("%-16s %9d %10d %7d\n", s.Name, s.Switches, s.Endpoints, s.Total())
		}
		fmt.Println("\nparametric families (any size): \"RxC mesh\", \"RxC torus\", \"M-port N-tree\", \"dragonfly KxM\", \"autofat PxN\"")
		return
	}

	if _, err := cli.Topology(*name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tp, err := topo.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := tp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "INVALID:", err)
		os.Exit(1)
	}
	fmt.Println(tp)

	// Degree distribution over switches.
	degrees := map[int]int{}
	for _, n := range tp.Nodes {
		if n.Type != asi.DeviceSwitch {
			continue
		}
		d := 0
		for p := 0; p < n.Ports; p++ {
			if _, _, ok := tp.Peer(n.ID, p); ok {
				d++
			}
		}
		degrees[d]++
	}
	fmt.Println("switch degree distribution:")
	for d := 0; d <= 32; d++ {
		if c, ok := degrees[d]; ok {
			fmt.Printf("  degree %2d: %d switches\n", d, c)
		}
	}

	if *verbose {
		fmt.Println("links:")
		for _, l := range tp.Links {
			fmt.Printf("  %s[%d] -- %s[%d]\n",
				tp.Nodes[l.A].Label, l.APort, tp.Nodes[l.B].Label, l.BPort)
		}
	}
}
