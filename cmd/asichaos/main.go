// Command asichaos drives the deterministic chaos harness: it generates
// seeded scenarios (random or catalogue fabrics under loss, delay, hot
// removals/additions and link flaps), executes them through the full
// sim/fabric/core stack, and checks every run against the convergence
// and conservation oracle. Failures are greedily shrunk to a minimal
// reproducer and emitted as JSON, which -replay runs back verbatim.
//
// Usage:
//
//	asichaos -runs 25                       # quick smoke sweep
//	asichaos -runs 50 -profile churn        # back-to-back changes mid-assimilation
//	asichaos -runs 25 -algs all             # cross-check all paper algorithms
//	asichaos -seed 7 -profile lossy -v      # one seed, verbose report
//	asichaos -replay repro.json -spans      # re-run a failure, span timeline
//	asichaos -emit-corpus internal/chaos/testdata/corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chaos"
	"repro/internal/span"
)

func main() {
	seed := flag.Uint64("seed", 1, "base seed; run i uses seed+i")
	runs := flag.Int("runs", 1, "number of generated scenarios to execute")
	profile := flag.String("profile", "quick", "generation profile: "+strings.Join(chaos.ProfileNames(), ", "))
	algs := flag.String("algs", "", "\"all\" cross-checks every paper algorithm per scenario (default: the scenario's own)")
	replay := flag.String("replay", "", "replay a scenario JSON file instead of generating")
	shrink := flag.Bool("shrink", true, "greedily shrink failing scenarios before reporting")
	spans := flag.Bool("spans", false, "trace causal spans and print the span report (replay mode)")
	verbose := flag.Bool("v", false, "print a line per scenario")
	emitCorpus := flag.String("emit-corpus", "", "write the built-in corpus scenarios into a directory and exit")
	flag.Parse()

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(code)
	}

	if *emitCorpus != "" {
		if err := emit(*emitCorpus); err != nil {
			fail(1, err)
		}
		return
	}

	opt := chaos.Options{Telemetry: true, Spans: *spans}

	if *replay != "" {
		b, err := os.ReadFile(*replay)
		if err != nil {
			fail(2, err)
		}
		sc, err := chaos.DecodeJSON(b)
		if err != nil {
			fail(2, err)
		}
		if err := replayOne(sc, opt, *shrink); err != nil {
			fail(1, err)
		}
		return
	}

	crossCheck := false
	switch *algs {
	case "", "scenario":
	case "all":
		crossCheck = true
	default:
		fail(2, fmt.Errorf("bad -algs %q (valid: all)", *algs))
	}
	p, ok := chaos.ProfileByName(*profile)
	if !ok {
		fail(2, fmt.Errorf("unknown profile %q (valid: %s)", *profile, strings.Join(chaos.ProfileNames(), ", ")))
	}

	failures, vacuous := 0, 0
	for i := 0; i < *runs; i++ {
		sc := chaos.Generate(*seed+uint64(i), p)
		err := checkOne(sc, opt, crossCheck, &vacuous)
		if err == nil {
			if *verbose {
				fmt.Printf("ok   %-16s alg=%-13s events=%d\n", sc.Name, sc.Algorithm, len(sc.Events))
			}
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", sc.Name, err)
		min := sc
		if *shrink {
			min = chaos.Shrink(sc, func(c chaos.Scenario) bool {
				var v int
				return checkOne(c, opt, crossCheck, &v) != nil
			})
			fmt.Fprintf(os.Stderr, "shrunk to %d switches, %d events:\n",
				scenarioSwitches(min), len(min.Events))
		}
		os.Stderr.Write(min.EncodeJSON())
	}
	fmt.Printf("%d scenarios, %d failures, %d vacuous (no trustworthy convergence comparison)\n",
		*runs, failures, vacuous)
	if failures > 0 {
		os.Exit(1)
	}
}

// checkOne executes a scenario (cross-checking every paper algorithm if
// asked) and returns the oracle's verdict.
func checkOne(sc chaos.Scenario, opt chaos.Options, crossCheck bool, vacuous *int) error {
	if crossCheck {
		return chaos.CrossCheck(sc, opt)
	}
	rep, err := chaos.Execute(sc, opt)
	if err != nil {
		return err
	}
	if rep.Vacuous() {
		*vacuous++
	}
	return (chaos.Oracle{}).Check(rep)
}

// replayOne re-runs one scenario verbatim and prints its full report.
func replayOne(sc chaos.Scenario, opt chaos.Options, shrink bool) error {
	rep, err := chaos.Execute(sc, opt)
	if err != nil {
		return err
	}
	name := sc.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("scenario:       %s (seed %d)\n", name, sc.Seed)
	fmt.Printf("algorithm:      %s\n", sc.Algorithm)
	fmt.Printf("events:         %d scripted, last change at %v\n", len(sc.Events), rep.LastChange)
	fmt.Printf("runs:           %d completed (churn run index %d, audit ran: %v)\n",
		len(rep.Results), rep.ChurnRun, rep.AuditRan)
	fmt.Printf("ground truth:   %d devices / %d links; post-churn DB %d / %d\n",
		rep.WantDevices, rep.WantLinks, rep.PostChurnDevices, rep.PostChurnLinks)
	fmt.Printf("pi5 after last: %d delivered\n", rep.PI5AfterLast)
	fmt.Printf("fingerprint:    %#x (db %#x)\n", rep.Fingerprint, rep.DBFingerprint)
	if rep.Vacuous() {
		fmt.Println("note:           vacuous run — no trustworthy convergence comparison")
	}
	if rep.Spans != nil {
		a, err := span.Analyze(*rep.Spans)
		if err != nil {
			return err
		}
		fmt.Println("\ncausal spans:")
		if err := span.WriteReport(os.Stdout, a, span.GanttOptions{}); err != nil {
			return err
		}
	}
	if err := (chaos.Oracle{}).Check(rep); err != nil {
		if shrink {
			min := chaos.Shrink(sc, func(c chaos.Scenario) bool {
				r, e := chaos.Execute(c, opt)
				return e != nil || (chaos.Oracle{}).Check(r) != nil
			})
			fmt.Fprintf(os.Stderr, "shrunk to %d switches, %d events:\n",
				scenarioSwitches(min), len(min.Events))
			os.Stderr.Write(min.EncodeJSON())
		}
		return err
	}
	fmt.Println("oracle:         ok")
	return nil
}

// scenarioSwitches counts the scenario topology's switches.
func scenarioSwitches(sc chaos.Scenario) int {
	tp, err := sc.Topology.Build()
	if err != nil {
		return -1
	}
	return tp.NumSwitches()
}

// emit writes the built-in corpus into dir.
func emit(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range chaos.CorpusScenarios() {
		path := filepath.Join(dir, chaos.CorpusFilename(sc))
		if err := os.WriteFile(path, sc.EncodeJSON(), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}
