// Command asichaos drives the deterministic chaos harness: it generates
// seeded scenarios (random or catalogue fabrics under loss, delay, hot
// removals/additions and link flaps), executes them through the full
// sim/fabric/core stack, and checks every run against the convergence
// and conservation oracle. Failures are greedily shrunk to a minimal
// reproducer and emitted as JSON, which -replay runs back verbatim.
//
// Usage:
//
//	asichaos -runs 25                       # quick smoke sweep
//	asichaos -runs 50 -profile churn        # back-to-back changes mid-assimilation
//	asichaos -runs 100 -workers 8           # parallel sweep, deterministic output
//	asichaos -runs 25 -algs all             # cross-check all paper algorithms
//	asichaos -seed 7 -profile lossy -v      # one seed, verbose report
//	asichaos -replay repro.json -spans      # re-run a failure, span timeline
//	asichaos -emit-corpus internal/chaos/testdata/corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/span"
)

func main() {
	var common cli.Common
	seed := flag.Uint64("seed", 1, "base seed; run i uses seed+i")
	runs := flag.Int("runs", 1, "number of generated scenarios to execute")
	profile := flag.String("profile", "quick", "generation profile: "+strings.Join(chaos.ProfileNames(), ", "))
	algs := flag.String("algs", "", "\"all\" cross-checks every paper algorithm per scenario (default: the scenario's own)")
	replay := flag.String("replay", "", "replay a scenario JSON file instead of generating")
	shrink := flag.Bool("shrink", true, "greedily shrink failing scenarios before reporting")
	spans := flag.Bool("spans", false, "trace causal spans and print the span report (replay mode)")
	common.RegisterWorkers(flag.CommandLine)
	common.RegisterRegions(flag.CommandLine)
	verbose := flag.Bool("v", false, "print a line per scenario")
	emitCorpus := flag.String("emit-corpus", "", "write the built-in corpus scenarios into a directory and exit")
	flag.Parse()

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(code)
	}
	if err := common.Validate(); err != nil {
		fail(2, err)
	}
	workers, regions := &common.Workers, &common.Regions

	if *emitCorpus != "" {
		if err := emit(*emitCorpus); err != nil {
			fail(1, err)
		}
		return
	}

	// Telemetry adds oracle coverage, but it forces the sequential path:
	// keep it only when regions weren't requested, so -regions actually
	// exercises the sharded executor instead of silently falling back.
	opt := chaos.Options{Telemetry: *regions <= 1, Spans: *spans, Regions: *regions}

	if *replay != "" {
		b, err := os.ReadFile(*replay)
		if err != nil {
			fail(2, err)
		}
		sc, err := chaos.DecodeJSON(b)
		if err != nil {
			fail(2, err)
		}
		if err := replayOne(sc, opt, *shrink); err != nil {
			fail(1, err)
		}
		return
	}

	crossCheck := false
	switch *algs {
	case "", "scenario":
	case "all":
		crossCheck = true
	default:
		fail(2, fmt.Errorf("bad -algs %q (valid: all)", *algs))
	}
	p, ok := chaos.ProfileByName(*profile)
	if !ok {
		fail(2, fmt.Errorf("unknown profile %q (valid: %s)", *profile, strings.Join(chaos.ProfileNames(), ", ")))
	}
	if *spans {
		// The full span report only prints in replay mode; a sweep keeps
		// per-run counts and drops each log as its run completes, so large
		// fabrics don't pin a million-span log per scenario.
		fmt.Fprintln(os.Stderr, "note: sweep mode summarizes spans per run; use -replay for the full span report")
	}

	results := chaos.Sweep(chaos.SweepOptions{
		Seed:       *seed,
		Runs:       *runs,
		Profile:    p,
		Exec:       opt,
		CrossCheck: crossCheck,
		Workers:    *workers,
	})
	failures, vacuous := 0, 0
	for _, r := range results {
		if r.Vacuous {
			vacuous++
		}
		if r.Err == nil {
			if *verbose {
				fmt.Printf("ok   %-16s alg=%-13s events=%d fp=%#016x%s\n",
					r.Scenario.Name, r.Scenario.Algorithm, len(r.Scenario.Events),
					r.Fingerprint, spanSummary(r))
			}
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", r.Scenario.Name, r.Err)
		min := r.Scenario
		if *shrink {
			min = chaos.Shrink(r.Scenario, func(c chaos.Scenario) bool {
				return checkOne(c, opt, crossCheck) != nil
			})
			fmt.Fprintf(os.Stderr, "shrunk to %d switches, %d events:\n",
				scenarioSwitches(min), len(min.Events))
		}
		os.Stderr.Write(min.EncodeJSON())
	}
	fmt.Printf("%d scenarios, %d failures, %d vacuous (no trustworthy convergence comparison)\n",
		*runs, failures, vacuous)
	if failures > 0 {
		os.Exit(1)
	}
}

// spanSummary renders the per-run span counts for a verbose sweep line.
func spanSummary(r chaos.SweepResult) string {
	if r.SpanCount == 0 && r.SpanDropped == 0 {
		return ""
	}
	return fmt.Sprintf(" spans=%d(dropped %d)", r.SpanCount, r.SpanDropped)
}

// checkOne executes a scenario (cross-checking every paper algorithm if
// asked) and returns the oracle's verdict; the shrinker uses it as its
// still-failing predicate.
func checkOne(sc chaos.Scenario, opt chaos.Options, crossCheck bool) error {
	if crossCheck {
		return chaos.CrossCheck(sc, opt)
	}
	rep, err := chaos.Execute(sc, opt)
	if err != nil {
		return err
	}
	return (chaos.Oracle{}).Check(rep)
}

// replayOne re-runs one scenario verbatim and prints its full report.
func replayOne(sc chaos.Scenario, opt chaos.Options, shrink bool) error {
	rep, err := chaos.Execute(sc, opt)
	if err != nil {
		return err
	}
	name := sc.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("scenario:       %s (seed %d)\n", name, sc.Seed)
	fmt.Printf("algorithm:      %s\n", sc.Algorithm)
	fmt.Printf("events:         %d scripted, last change at %v\n", len(sc.Events), rep.LastChange)
	fmt.Printf("runs:           %d completed (churn run index %d, audit ran: %v)\n",
		len(rep.Results), rep.ChurnRun, rep.AuditRan)
	fmt.Printf("ground truth:   %d devices / %d links; post-churn DB %d / %d\n",
		rep.WantDevices, rep.WantLinks, rep.PostChurnDevices, rep.PostChurnLinks)
	fmt.Printf("pi5 after last: %d delivered\n", rep.PI5AfterLast)
	fmt.Printf("fingerprint:    %#x (db %#x)\n", rep.Fingerprint, rep.DBFingerprint)
	if rep.Vacuous() {
		fmt.Println("note:           vacuous run — no trustworthy convergence comparison")
	}
	if rep.Spans != nil {
		a, err := span.Analyze(*rep.Spans)
		if err != nil {
			return err
		}
		fmt.Println("\ncausal spans:")
		if err := span.WriteReport(os.Stdout, a, span.GanttOptions{}); err != nil {
			return err
		}
	}
	if err := (chaos.Oracle{}).Check(rep); err != nil {
		if shrink {
			min := chaos.Shrink(sc, func(c chaos.Scenario) bool {
				r, e := chaos.Execute(c, opt)
				return e != nil || (chaos.Oracle{}).Check(r) != nil
			})
			fmt.Fprintf(os.Stderr, "shrunk to %d switches, %d events:\n",
				scenarioSwitches(min), len(min.Events))
			os.Stderr.Write(min.EncodeJSON())
		}
		return err
	}
	fmt.Println("oracle:         ok")
	return nil
}

// scenarioSwitches counts the scenario topology's switches.
func scenarioSwitches(sc chaos.Scenario) int {
	tp, err := sc.Topology.Build()
	if err != nil {
		return -1
	}
	return tp.NumSwitches()
}

// emit writes the built-in corpus into dir.
func emit(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range chaos.CorpusScenarios() {
		path := filepath.Join(dir, chaos.CorpusFilename(sc))
		if err := os.WriteFile(path, sc.EncodeJSON(), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}
