package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
)

// The keeper replaces the serve loop's fixed churn/audit cadence with
// per-concern deadlines: each steady-state duty — churn rounds, the
// stale-region re-audit, dead-cursor expiry, the debounce flush — owns
// its own next-due instant and a fire function that performs the duty
// and returns the following one. Once runs every due concern exactly
// once and reports the earliest upcoming deadline, so the serve loop
// sleeps precisely until the next duty instead of polling on one clock.

// concern is one keeper duty.
type concern struct {
	name string
	due  time.Time
	fire func(now time.Time) time.Time
}

// keeper holds the daemon's concerns in registration order.
type keeper struct {
	concerns []*concern
}

// add registers a concern first due at start.
func (k *keeper) add(name string, start time.Time, fire func(now time.Time) time.Time) {
	k.concerns = append(k.concerns, &concern{name: name, due: start, fire: fire})
}

// Once fires every concern whose deadline has arrived and returns the
// earliest next deadline. It never sleeps; the caller owns pacing.
func (k *keeper) Once(now time.Time) time.Time {
	for _, c := range k.concerns {
		if !now.Before(c.due) {
			c.due = c.fire(now)
		}
	}
	next := k.concerns[0].due
	for _, c := range k.concerns[1:] {
		if c.due.Before(next) {
			next = c.due
		}
	}
	return next
}

// newKeeper builds the daemon's keeper: churn paced by interval, the
// re-audit concern on the same cadence (firing only when its round-count
// or staleness trigger is armed), cursor expiry every few intervals, and
// a debounce-flush safety net at a quarter interval. Fire functions take
// d.mu themselves; the caller must not hold it.
func (d *daemon) newKeeper(start time.Time, interval time.Duration, quiet bool) *keeper {
	if interval <= 0 {
		interval = time.Second
	}
	k := &keeper{}

	if d.ch != nil {
		k.add("churn", start.Add(interval), func(now time.Time) time.Time {
			d.mu.Lock()
			d.round()
			d.mu.Unlock()
			if !quiet {
				s := d.rib.Stats()
				fmt.Fprintf(os.Stderr, "asifmd: round %d gen %d leaves %d subscribers %d down %d lag(p99) %d\n",
					d.rounds, s.Gen, s.Leaves, s.Subscribers, d.ch.Down(), s.Staleness.P99)
			}
			return now.Add(interval)
		})
	}

	k.add("reaudit", start.Add(interval), func(now time.Time) time.Time {
		d.mu.Lock()
		trigger := ""
		if n := d.cfg.AuditEvery; n > 0 && d.rounds-d.lastAudit >= n {
			trigger = fmt.Sprintf("%d rounds since audit", d.rounds-d.lastAudit)
		} else if ms := d.cfg.StaleAfterMS; ms > 0 {
			if _, _, max := d.m.DBStaleness(); max > sim.Duration(ms)*sim.Millisecond {
				trigger = fmt.Sprintf("max staleness %v", max)
			}
		}
		if trigger != "" {
			d.audit(trigger)
		}
		d.mu.Unlock()
		return now.Add(interval)
	})

	k.add("expire", start.Add(4*interval), func(now time.Time) time.Time {
		d.mu.Lock()
		if n := d.m.ExpireReporters(); n > 0 && !quiet {
			fmt.Fprintf(os.Stderr, "asifmd: expired %d dead PI-5 cursors\n", n)
		}
		d.mu.Unlock()
		return now.Add(4 * interval)
	})

	k.add("flush", start.Add(interval/4), func(now time.Time) time.Time {
		d.mu.Lock()
		if d.m.AssimPending() > 0 {
			// Draining the simulation fires the armed debounce timer.
			d.run()
		}
		d.mu.Unlock()
		return now.Add(interval / 4)
	})

	return k
}
