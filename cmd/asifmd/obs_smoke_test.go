package main

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// scrapeMetrics fetches and parses /metrics into per-name samples.
func scrapeMetrics(t *testing.T, url string) (map[string][]obs.PromPoint, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.MetricsContentType {
		t.Errorf("content type %q", ct)
	}
	points, types, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	byName := map[string][]obs.PromPoint{}
	for _, pt := range points {
		if math.IsNaN(pt.Value) || math.IsInf(pt.Value, 0) {
			t.Errorf("non-finite sample %s = %v", pt.Name, pt.Value)
		}
		byName[pt.Name] = append(byName[pt.Name], pt)
	}
	return byName, types
}

// TestObsSmoke drives the full observability plane end to end, exactly
// as `make obs-smoke`: an in-process asifmd under churn, scraped twice
// over HTTP, must serve machine-parseable Prometheus text with finite
// windowed rates, populated staleness percentiles, a dashboard document
// and an NDJSON event log.
func TestObsSmoke(t *testing.T) {
	cfg := experiment.DefaultDaemonConfig()
	cfg.Topology = "4x4 mesh"
	cfg.ChurnOps = 2
	cfg.AuditEvery = 2
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.bootstrap(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// A consuming subscriber and a stalled one: the staleness SLO gets a
	// population with spread.
	fresh := d.rib.Subscribe("/")
	defer fresh.Close()
	go func() {
		for range fresh.Updates() {
		}
	}()
	stalled := d.rib.Subscribe("/")
	defer stalled.Close()

	// First scrape, keeper-driven churn, second scrape: the window
	// between them makes the rates non-degenerate, and the re-audit
	// concern (audit_every = 2) fires along the way.
	d.scrape()
	first, _ := scrapeMetrics(t, ts.URL)
	now := time.Now()
	k := d.newKeeper(now, 100*time.Millisecond, true)
	for d.rounds < 3 {
		now = k.Once(now)
	}
	d.scrape()
	second, types := scrapeMetrics(t, ts.URL)

	value := func(m map[string][]obs.PromPoint, name string) float64 {
		pts := m[name]
		if len(pts) == 0 {
			t.Fatalf("%s missing from exposition", name)
		}
		return pts[0].Value
	}

	// Cumulative counters advanced across the churn.
	if f, s := value(first, "asi_sim_events"), value(second, "asi_sim_events"); s <= f {
		t.Errorf("sim.events did not advance: %v -> %v", f, s)
	}
	if g := value(second, "asi_rib_generation"); g <= 1 {
		t.Errorf("generation %v after churn", g)
	}
	if types["asi_sim_events"] != "counter" || types["asi_rib_generation"] != "gauge" {
		t.Errorf("types drifted: %v %v", types["asi_sim_events"], types["asi_rib_generation"])
	}

	// Windowed rates exist and are finite (ParseProm already rejected
	// NaN/Inf); the event rate must be positive across a churn window.
	if r := value(second, "asi_sim_events_rate"); r <= 0 {
		t.Errorf("windowed event rate %v, want > 0", r)
	}
	if w := value(second, "asi_obs_window_seconds"); w <= 0 {
		t.Errorf("window %vs", w)
	}

	// Staleness SLO populated: three quantile series, max > 0 thanks to
	// the stalled subscriber.
	sl := map[string]float64{}
	for _, pt := range second["asi_rib_staleness_generations"] {
		sl[pt.Labels["quantile"]] = pt.Value
	}
	if len(sl) != 3 {
		t.Fatalf("staleness series %v, want quantiles 0.5/0.99/1", sl)
	}
	if sl["1"] == 0 {
		t.Error("stalled subscriber shows zero max staleness")
	}
	if sl["1"] < sl["0.99"] || sl["0.99"] < sl["0.5"] {
		t.Errorf("staleness quantiles out of order: %v", sl)
	}
	// The consuming subscriber produced deliver-latency observations.
	if c := value(second, "asi_rib_deliver_latency_ns_count"); c == 0 {
		t.Error("deliver latency histogram empty")
	}

	// The dashboard document parses and agrees with the exposition.
	resp, err := http.Get(ts.URL + "/obs.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.DashDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("obs.json did not parse: %v", err)
	}
	resp.Body.Close()
	if doc.Gen != uint64(value(second, "asi_rib_generation")) {
		t.Errorf("dashboard gen %d, exposition %v", doc.Gen, value(second, "asi_rib_generation"))
	}
	if len(doc.Rates) == 0 || len(doc.Quantiles) == 0 {
		t.Errorf("dashboard missing windowed stats: %d rates %d quantiles", len(doc.Rates), len(doc.Quantiles))
	}

	// The event log streamed NDJSON with converge and churn entries.
	resp, err = http.Get(ts.URL + "/events?n=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("event line did not parse: %v", err)
		}
		kinds[e.Kind]++
	}
	for _, want := range []string{obs.EventDiscoveryStart, obs.EventDiscoveryConverge, obs.EventChurnApply, obs.EventAudit} {
		if kinds[want] == 0 {
			t.Errorf("no %q event logged (saw %v)", want, kinds)
		}
	}
}

// TestObsSmokeSharded repeats the scrape cycle on the region-sharded
// path: shard counters and the per-region event split must appear.
func TestObsSmokeSharded(t *testing.T) {
	cfg := experiment.DefaultDaemonConfig()
	cfg.Topology = "8x8 mesh"
	cfg.ChurnOps = 2
	cfg.Regions = 4
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.bootstrap(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	d.scrape()
	for i := 0; i < 2; i++ {
		d.mu.Lock()
		d.round()
		d.mu.Unlock()
	}
	d.scrape()
	byName, types := scrapeMetrics(t, ts.URL)

	if types["asi_sim_shard_rounds"] != "counter" || len(byName["asi_sim_shard_rounds"]) == 0 {
		t.Fatalf("shard rounds missing: %v", types)
	}
	if byName["asi_sim_shard_rounds"][0].Value == 0 {
		t.Error("shard rounds zero after sharded churn")
	}
	split := byName["asi_sim_region_events"]
	if len(split) < 2 {
		t.Fatalf("per-region split has %d series, want >= 2", len(split))
	}
	var sum, total float64
	for _, pt := range split {
		sum += pt.Value
	}
	total = byName["asi_sim_events"][0].Value
	if sum != total {
		t.Errorf("region split sums to %v, total %v", sum, total)
	}

	resp, err := http.Get(ts.URL + "/obs.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc obs.DashDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("obs.json did not parse: %v", err)
	}
	if len(doc.Regions) < 2 {
		t.Errorf("dashboard regions %+v, want >= 2", doc.Regions)
	}
}
