package main

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiment"
)

// TestKeeperRaceSharded drives the keeper loop on a 4-region sharded
// daemon with the coalescing partial FM while the observability scraper,
// HTTP metric readers and a RIB subscriber run concurrently — the
// configuration `go test -race ./cmd/asifmd` checks for data races
// between the keeper's concerns (churn, staleness-keyed re-audit, cursor
// expiry, debounce flush) and every reader path.
func TestKeeperRaceSharded(t *testing.T) {
	cfg := experiment.DefaultDaemonConfig()
	cfg.Topology = "8x8 mesh"
	cfg.Algorithm = core.Partial.Slug()
	cfg.Regions = 4
	cfg.ChurnOps = 2
	cfg.AuditEvery = 2
	cfg.AssimWindowUS = 200
	cfg.StaleAfterMS = 1
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.bootstrap(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// The scraper goroutine, exactly as serve() runs it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.scrape()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// An HTTP reader hitting the exposition and the dashboard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, path := range []string{"/metrics", "/obs.json", "/stats"} {
					if resp, err := http.Get(ts.URL + path); err == nil {
						resp.Body.Close()
					}
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// A consuming RIB subscriber replaying the diff stream.
	sub := d.rib.Subscribe("/")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range sub.Updates() {
		}
	}()

	// The keeper on its synthetic clock: jumping straight to each next
	// deadline fires every concern at its own cadence.
	now := time.Now()
	k := d.newKeeper(now, 50*time.Millisecond, true)
	for d.rounds < 6 {
		now = k.Once(now)
	}

	close(stop)
	sub.Close()
	wg.Wait()

	// Restore and verify: after quiesce the audited database must match
	// the live ground truth.
	d.mu.Lock()
	keeperAudited := d.lastAudit
	d.quiesce()
	pending := d.m.AssimPending()
	res, ok := d.m.LastResult()
	d.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d reports stranded in the debounce window", pending)
	}
	if !ok {
		t.Fatal("no discovery run completed")
	}
	if err := chaos.CheckConverged(d.f, d.m, res); err != nil {
		t.Fatal(err)
	}
	if keeperAudited == 0 {
		t.Error("keeper never audited (audit_every = 2 over 6 rounds)")
	}
}
