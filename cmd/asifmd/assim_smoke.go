package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// runAssimSmoke is `-assim-smoke N`: the continuous-assimilation
// verification mode behind `make assim-smoke`. It drives N keeper-driven
// churn rounds against the coalescing partial FM on a synthetic clock
// (every concern fires at its exact deadline, no wall sleeping),
// restores the fabric, and fails unless
//
//   - the final audited database matches the live ground truth with a
//     path-consistent view,
//   - the /metrics exposition served over a real socket shows coalesced
//     assimilation happened (events, coalesced subset, flushes) and the
//     DB-staleness gauges are populated, and
//   - no report is left stranded in the debounce window.
//
// It prints the sustained assimilated PI-5 rate in simulated time.
func (d *daemon) runAssimSmoke(rounds int, jsonOut bool) error {
	if d.ch == nil {
		return fmt.Errorf("asifmd: assim-smoke needs churn (set churn_ops > 0)")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, d.handler())

	const interval = 100 * time.Millisecond
	now := time.Now()
	k := d.newKeeper(now, interval, true)
	startPS := d.now()
	for d.rounds < rounds {
		// Once returns the earliest next deadline; jumping the synthetic
		// clock straight to it exercises every concern's own cadence.
		now = k.Once(now)
	}
	d.mu.Lock()
	d.quiesce()
	pending := d.m.AssimPending()
	res, haveRes := d.m.LastResult()
	d.mu.Unlock()

	if pending != 0 {
		return fmt.Errorf("asifmd: %d reports stranded in the debounce window after quiesce", pending)
	}
	if !haveRes {
		return fmt.Errorf("asifmd: no discovery run ever completed")
	}
	if err := chaos.CheckConverged(d.f, d.m, res); err != nil {
		return fmt.Errorf("asifmd: post-quiesce audit diverged: %w", err)
	}

	// Scrape, then assert over the wire exactly what an operator's
	// dashboard would query.
	d.scrape()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	points, _, err := obs.ParseProm(resp.Body)
	if err != nil {
		return fmt.Errorf("asifmd: /metrics did not parse: %w", err)
	}
	metric := func(name string) (float64, bool) {
		for _, pt := range points {
			if pt.Name == name {
				return pt.Value, true
			}
		}
		return 0, false
	}
	events, _ := metric("asi_fm_assim_events")
	coalesced, _ := metric("asi_fm_assim_events_coalesced")
	flushes, _ := metric("asi_fm_assim_flushes")
	if events == 0 || coalesced == 0 || flushes == 0 {
		return fmt.Errorf("asifmd: coalescing left no metric trace: %v events, %v coalesced, %v flushes",
			events, coalesced, flushes)
	}
	if flushes >= events {
		return fmt.Errorf("asifmd: %v flushes for %v events; coalescing saved nothing", flushes, events)
	}
	for _, name := range []string{"asi_fm_db_staleness_p50", "asi_fm_db_staleness_p99", "asi_fm_db_staleness_max"} {
		if _, ok := metric(name); !ok {
			return fmt.Errorf("asifmd: %s missing from /metrics", name)
		}
	}

	simSpan := d.now().Sub(startPS)
	perSec := 0.0
	if simSpan > 0 {
		perSec = events / (float64(simSpan) / float64(sim.Second))
	}
	s := d.rib.Stats()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"topology":        d.cfg.Topology,
			"algorithm":       d.cfg.Kind().Slug(),
			"rounds":          d.rounds,
			"generations":     s.Gen,
			"assim_events":    events,
			"assim_coalesced": coalesced,
			"assim_flushes":   flushes,
			"pi5_per_sec_sim": perSec,
		})
	} else {
		fmt.Printf("asifmd assim-smoke: %q %s: %d rounds, %d generations, %.0f PI-5s assimilated "+
			"(%.0f coalesced, %.0f flushes), sustained %.0f PI-5s/s (sim): OK\n",
			d.cfg.Topology, core.Partial.Slug(), d.rounds, s.Gen, events, coalesced, flushes, perSec)
	}
	return nil
}
