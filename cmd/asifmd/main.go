// Command asifmd is the long-running fabric-manager daemon: it owns one
// simulated ASI fabric, keeps the discovery engine converged under
// continuous churn, installs every completed discovery into a versioned
// topology RIB, derives a FIB per generation, and streams JSON diffs to
// HTTP subscribers over gNMI-style paths. A continuous observability
// plane scrapes the daemon's telemetry into a ring-buffer time-series
// store and serves it as Prometheus text, a structured event log, and a
// dashboard document.
//
// Usage:
//
//	asifmd                                   # defaults: 8-port 3-tree, :8080
//	asifmd -config daemon.json               # full config file
//	asifmd -topo "8x8 mesh" -listen :9000    # flag overrides
//	asifmd -rounds 100 -interval 250ms       # bounded churn, 4 rounds/s
//	asifmd -regions 4                        # region-sharded simulation
//	asifmd -debug :6060                      # net/http/pprof + expvar
//	asifmd -smoke 1000 -rounds 6             # verification mode (see below)
//	asifmd -assim-smoke 12                   # continuous-assimilation check
//
// Observe with any HTTP client:
//
//	curl -N 'http://localhost:8080/subscribe?path=/fib/routes'
//	curl 'http://localhost:8080/metrics'     # Prometheus exposition
//	curl 'http://localhost:8080/events?n=50' # NDJSON event log tail
//	curl 'http://localhost:8080/obs.json'    # dashboard doc (cmd/asitop)
//	curl 'http://localhost:8080/stats'       # serving layer + staleness SLO
//
// Smoke mode (-smoke N) runs the configured churn rounds while N
// in-process subscribers plus a set of real HTTP subscribers replay the
// diff stream concurrently, then verifies every reconstruction is
// byte-identical to the live snapshot and fingerprint-identical to the
// FM's database. It exits non-zero on any mismatch — `make daemon-smoke`
// is this mode.
//
// Assim-smoke mode (-assim-smoke N) forces the partial algorithm with
// the coalescing front-end and drives N keeper-driven churn rounds on a
// synthetic clock, then verifies ground-truth convergence, the
// /metrics assimilation counters and the DB-staleness gauges — `make
// assim-smoke` is this mode.
package main

import (
	"bufio"
	"encoding/json"
	_ "expvar" // -debug: /debug/vars on the default mux
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug: /debug/pprof on the default mux
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/rib"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

func main() {
	var common cli.Common
	common.RegisterConfig(flag.CommandLine)
	common.RegisterJSON(flag.CommandLine)
	common.RegisterRegions(flag.CommandLine)
	topoName := flag.String("topo", "", "override the config topology")
	alg := flag.String("alg", "", "override the config algorithm ("+
		"serial-packet, serial-device, parallel, partial; aliases sp, sd, p)")
	seed := flag.Uint64("seed", 0, "override the config seed")
	listen := flag.String("listen", "", "override the config listen address")
	rounds := flag.Int("rounds", 0, "override the config churn-round bound (0 = config value)")
	churnOps := flag.Int("churn-ops", -1, "override the config toggles per churn round")
	scrapeMS := flag.Int("scrape-ms", 0, "override the config observability scrape interval (ms)")
	interval := flag.Duration("interval", time.Second, "wall-clock pause between churn rounds (serve mode)")
	debugAddr := flag.String("debug", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	smoke := flag.Int("smoke", 0, "smoke mode: N concurrent in-process subscribers, verify replay, exit")
	assimSmoke := flag.Int("assim-smoke", 0, "assimilation smoke mode: N keeper-driven churn rounds against the coalescing partial FM, verify convergence and metrics, exit")
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(2, err)
	}

	cfg, err := common.LoadDaemonConfig()
	if err != nil {
		fatal(2, err)
	}
	if *topoName != "" {
		cfg.Topology = *topoName
	}
	if *alg != "" {
		k, err := cli.Algorithm(*alg)
		if err != nil {
			fatal(2, err)
		}
		cfg.Algorithm = k.Slug()
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			cfg.Seed = *seed
		case "listen":
			cfg.Listen = *listen
		case "rounds":
			cfg.Rounds = *rounds
		case "churn-ops":
			cfg.ChurnOps = *churnOps
		case "scrape-ms":
			cfg.ScrapeMS = *scrapeMS
		case "regions":
			cfg.Regions = common.Regions
		}
	})
	if *assimSmoke > 0 {
		// The mode verifies the coalescing partial path; force it on
		// unless the config already selected it.
		cfg.Algorithm = core.Partial.Slug()
		if cfg.AssimWindowUS == 0 {
			cfg.AssimWindowUS = 200
		}
		if cfg.StaleAfterMS == 0 {
			cfg.StaleAfterMS = 5
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal(2, err)
	}

	if *debugAddr != "" {
		// DefaultServeMux already carries /debug/pprof/ (net/http/pprof)
		// and /debug/vars (expvar) from their package imports.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/pprof and /debug/vars\n", *debugAddr)
	}

	d, err := newDaemon(cfg)
	if err != nil {
		fatal(1, err)
	}
	if err := d.bootstrap(); err != nil {
		fatal(1, err)
	}

	if *assimSmoke > 0 {
		if err := d.runAssimSmoke(*assimSmoke, common.JSON); err != nil {
			fatal(1, err)
		}
		return
	}
	if *smoke > 0 {
		if err := d.runSmoke(*smoke, common.JSON); err != nil {
			fatal(1, err)
		}
		return
	}
	d.serve(*interval)
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(code)
}

// daemon owns the simulated fabric, its manager, the serving layer and
// the observability plane. All simulation work happens under mu; the RIB
// and the plane decouple every reader from that hot path.
type daemon struct {
	cfg experiment.DaemonConfig
	e   *sim.Engine     // sequential engine (nil when sharded)
	g   *sim.ShardGroup // sharded group (nil when sequential)
	f   *fabric.Fabric
	m   *core.Manager
	rib *rib.RIB
	ch  *chaos.Churner

	// mu serializes simulation work (churn rounds, audits) against the
	// periodic telemetry scrape: the registry is not safe for concurrent
	// use, so the scraper and the simulation take turns.
	mu    sync.Mutex
	reg   *telemetry.Registry
	plane *obs.Plane
	start time.Time

	// simNow mirrors the simulation clock (picoseconds) for hooks that
	// fire off the simulation goroutine (RIB overflow/resync events).
	simNow    atomic.Int64
	installs  int
	rounds    int
	lastAudit int // rounds value at the most recent audit
}

func newDaemon(cfg experiment.DaemonConfig) (*daemon, error) {
	tp, err := topo.ByName(cfg.Topology)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		cfg:   cfg,
		reg:   telemetry.New(),
		plane: obs.New(obs.Config{}),
		start: time.Now(),
	}
	// Serving-layer events (subscriber overflow → resync) feed the
	// structured event log; the hook fires without RIB locks held.
	d.rib = rib.New(rib.Config{QueueDepth: cfg.QueueDepth, OnEvent: func(kind string, gen uint64) {
		d.plane.Log(kind, gen, d.simNow.Load(), "")
	}})

	rng := sim.NewRNG(cfg.Seed*2654435761 + 1)
	if cfg.Regions > 1 {
		// The FM host seeds region 0, keeping the manager's engine local.
		part, perr := tp.Partition(cfg.Regions, tp.Endpoints()[0])
		if perr != nil {
			return nil, perr
		}
		d.g = sim.NewShardGroup(part.Count, 0) // lookahead set by NewSharded
		d.g.SeedRNGs(sim.NewRNG(cfg.Seed*2654435761 + 2))
		d.f, err = fabric.NewSharded(d.g, part, tp, fabric.Config{}, rng)
	} else {
		d.e = sim.NewEngine()
		d.f, err = fabric.New(d.e, tp, fabric.Config{}, rng)
	}
	if err != nil {
		return nil, err
	}
	// Per-link fabric telemetry is sequential-only; the FM's own metrics
	// are safe on either path (the manager runs on one region's engine).
	if d.g == nil {
		d.f.EnableTelemetry(d.reg)
	}
	ep := d.f.Device(tp.Endpoints()[0])
	mopt := core.Options{Algorithm: cfg.Kind(), Telemetry: d.reg}
	if cfg.AssimWindowUS > 0 {
		mopt.AssimWindow = sim.Micros(float64(cfg.AssimWindowUS))
		mopt.AssimBatchMax = cfg.AssimBatchMax
	}
	d.m = core.NewManager(d.f, ep, mopt)
	d.m.OnDiscoveryComplete = func(r core.Result) {
		// The install is the cold-path bridge from simulation to serving:
		// clone the FM database, stamp a generation, fan out diffs.
		gen, diff := d.rib.Install(d.m.DB())
		d.installs++
		detail := fmt.Sprintf("%s in %s", d.cfg.Kind().Slug(), r.Duration)
		if !diff.Empty() {
			detail += fmt.Sprintf("; +%d/-%d devices +%d/-%d links",
				len(diff.AddedDevices), len(diff.RemovedDevices),
				len(diff.AddedLinks), len(diff.RemovedLinks))
		}
		d.plane.Log(obs.EventDiscoveryConverge, gen, int64(d.now()), detail)
	}
	if cfg.ChurnOps > 0 {
		d.ch, err = chaos.NewChurner(tp, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// run drains the simulation to quiescence on whichever path is active;
// now reads the (quiescent) simulation clock.
func (d *daemon) run() {
	if d.g != nil {
		d.g.Run()
	} else {
		d.e.Run()
	}
	d.simNow.Store(int64(d.now()))
}

func (d *daemon) now() sim.Time {
	if d.g != nil {
		return d.g.Now()
	}
	return d.e.Now()
}

// bootstrap runs the transient period: initial discovery plus
// event-route distribution, producing RIB generation 1.
func (d *daemon) bootstrap() error {
	d.plane.Log(obs.EventDiscoveryStart, 0, int64(d.now()), "bootstrap")
	d.m.StartDiscovery()
	d.run()
	if d.installs == 0 {
		return fmt.Errorf("asifmd: initial discovery on %q completed no run", d.cfg.Topology)
	}
	var distErr error
	d.m.DistributeEventRoutes(func(r core.DistResult) {
		if r.Failures > 0 {
			distErr = fmt.Errorf("asifmd: %d event-route distribution failures", r.Failures)
		}
	})
	d.run()
	return distErr
}

// round applies one churn round and drains the simulation back to
// quiescence; PI-5 driven assimilation installs along the way. Audits
// are the keeper's re-audit concern, not the round's. Callers hold d.mu.
func (d *daemon) round() {
	d.rounds++
	base := d.now()
	evs := d.ch.Round(d.cfg.ChurnOps)
	d.plane.Log(obs.EventChurnApply, d.rib.Current().Gen, int64(base),
		fmt.Sprintf("round %d: %d toggles", d.rounds, len(evs)))
	d.applyChurn(base, evs)
}

// applyChurn injects the round's toggles and drains to quiescence. On
// the sequential path the toggles are scheduled as engine events; on the
// sharded path scheduling a closure that mutates both halves of a
// cross-region link would race, so the coordinator instead advances all
// regions to each toggle's time with RunUntil — between rounds it owns
// every region — and applies the toggle directly.
func (d *daemon) applyChurn(base sim.Time, evs []chaos.Event) {
	toggle := func(ev chaos.Event) {
		if ev.Op == chaos.OpDown {
			d.f.SetDeviceDown(topo.NodeID(ev.Node), false)
		} else {
			d.f.SetDeviceUp(topo.NodeID(ev.Node), false)
		}
	}
	if d.g != nil {
		for _, ev := range evs {
			d.g.RunUntil(base.Add(sim.Micros(ev.AtUS)))
			toggle(ev)
		}
	} else {
		for _, ev := range evs {
			ev := ev
			d.e.At(base.Add(sim.Micros(ev.AtUS)), func(*sim.Engine) { toggle(ev) })
		}
	}
	d.run()
}

// audit forces a full rediscovery (one more generation, even when the
// topology is unchanged); detail names what triggered it.
func (d *daemon) audit(detail string) {
	d.plane.Log(obs.EventAudit, d.rib.Current().Gen, int64(d.now()), detail)
	d.plane.Log(obs.EventDiscoveryStart, d.rib.Current().Gen, int64(d.now()), "audit")
	d.m.StartDiscovery()
	d.run()
	d.lastAudit = d.rounds
}

// quiesce restores every churned-down switch and audits, making the
// served state the full topology again.
func (d *daemon) quiesce() {
	if d.ch == nil {
		return
	}
	base := d.now()
	evs := d.ch.Quiesce()
	for i := range evs {
		evs[i].Op = chaos.OpUp
	}
	d.applyChurn(base, evs)
	d.audit("quiesce rediscovery")
}

// scrape publishes the engine/shard totals into the registry and stores
// one observability sample. It takes d.mu, so it never overlaps
// simulation work.
func (d *daemon) scrape() {
	d.mu.Lock()
	if d.g != nil {
		d.g.RecordTelemetry(d.reg)
	} else {
		d.e.RecordTelemetry(d.reg, time.Since(d.start))
	}
	// The flap tally lives on the fabric; republishing the total keeps
	// repeated scrapes from double-counting.
	d.reg.Counter(fabric.MetricLinkFlaps).SetTotal(d.f.Counters().LinkFlaps)
	// Refresh the per-node DB-staleness percentile gauges at scrape time:
	// they age with the simulation clock, not with churn.
	d.m.RecordDBStaleness()
	snap := d.reg.Snapshot()
	simPS := int64(d.now())
	d.mu.Unlock()

	stats := d.rib.Stats() // safe concurrently; outside the sim mutex
	d.plane.Scrape(obs.Sample{
		SimPS:     simPS,
		Gen:       stats.Gen,
		Telemetry: snap,
		Serving:   stats,
	})
}

// handler builds the daemon's full HTTP surface: the RIB's serving
// routes plus the observability plane's three views.
func (d *daemon) handler() http.Handler {
	srv := rib.NewServer(d.rib)
	srv.Handle("GET /metrics", d.plane.MetricsHandler())
	srv.Handle("GET /events", d.plane.EventsHandler())
	srv.Handle("GET /obs.json", d.plane.DashHandler())
	return srv.Handler()
}

// scrapeEvery resolves the configured scrape cadence.
func (d *daemon) scrapeEvery() time.Duration {
	if d.cfg.ScrapeMS > 0 {
		return time.Duration(d.cfg.ScrapeMS) * time.Millisecond
	}
	return time.Second
}

// serve streams forever (or for cfg.Rounds rounds): HTTP on cfg.Listen,
// steady-state duties driven by the keeper on this goroutine (churn
// paced by interval; re-audit, cursor expiry and debounce flush on their
// own deadlines), scrapes paced by cfg.ScrapeMS on their own.
func (d *daemon) serve(interval time.Duration) {
	ln, err := net.Listen("tcp", d.cfg.Listen)
	if err != nil {
		fatal(1, err)
	}
	go http.Serve(ln, d.handler())
	fmt.Fprintf(os.Stderr, "asifmd: managing %q (%s, %d region(s)), serving on http://%s\n",
		d.cfg.Topology, d.cfg.Kind(), d.regions(), ln.Addr())

	d.scrape() // populate /metrics before the first tick
	go func() {
		t := time.NewTicker(d.scrapeEvery())
		defer t.Stop()
		for range t.C {
			d.scrape()
		}
	}()

	if d.ch == nil {
		fmt.Fprintln(os.Stderr, "asifmd: churn disabled; serving the initial discovery")
		select {} // serve until the process is stopped
	}
	k := d.newKeeper(time.Now(), interval, false)
	for d.cfg.Rounds == 0 || d.rounds < d.cfg.Rounds {
		next := k.Once(time.Now())
		time.Sleep(time.Until(next))
	}
	d.mu.Lock()
	d.quiesce()
	d.mu.Unlock()
	fmt.Fprintf(os.Stderr, "asifmd: %d rounds done, fabric quiesced at gen %d; still serving\n",
		d.rounds, d.rib.Current().Gen)
	select {} // serve until the process is stopped
}

// regions reports the simulation width actually in use.
func (d *daemon) regions() int {
	if d.g != nil {
		return d.g.Shards()
	}
	return 1
}

// smokeResult is one subscriber's verdict.
type smokeResult struct {
	id  int
	err error
}

// runSmoke drives the configured churn while subscribers replay
// concurrently, then verifies every reconstruction.
func (d *daemon) runSmoke(subscribers int, jsonOut bool) error {
	rounds := d.cfg.Rounds
	if rounds == 0 {
		rounds = 6
	}

	// targetGen, once non-zero, is the generation at which a subscriber
	// stops reading; expected* are set before targetGen's batch is
	// published, so a subscriber that reached the target can compare.
	var (
		targetGen    atomic.Uint64
		expectedOnce sync.Once
		expectedWait = make(chan struct{})
		expectedCan  []byte
		expectedFP   uint64
	)
	verify := func(id int, rep *rib.Replayer) smokeResult {
		<-expectedWait
		if got := rep.Canonical("/"); string(got) != string(expectedCan) {
			return smokeResult{id, fmt.Errorf("subscriber %d: replayed state not byte-identical at gen %d", id, rep.Gen())}
		}
		fp, err := rep.Fingerprint()
		if err != nil {
			return smokeResult{id, fmt.Errorf("subscriber %d: %w", id, err)}
		}
		if fp != expectedFP {
			return smokeResult{id, fmt.Errorf("subscriber %d: fingerprint %#x, live DB %#x", id, fp, expectedFP)}
		}
		return smokeResult{id, nil}
	}

	results := make(chan smokeResult, subscribers+16)
	var wg sync.WaitGroup

	// In-process subscribers: the ISSUE's >= 1000 concurrent readers.
	for i := 0; i < subscribers; i++ {
		sub := d.rib.Subscribe("/")
		wg.Add(1)
		go func(id int, sub *rib.Subscription) {
			defer wg.Done()
			defer sub.Close()
			rep := rib.NewReplayer()
			for {
				b, ok := <-sub.Updates()
				if !ok {
					results <- smokeResult{id, fmt.Errorf("subscriber %d: stream closed early", id)}
					return
				}
				if err := rep.Apply(b); err != nil {
					results <- smokeResult{id, fmt.Errorf("subscriber %d: %w", id, err)}
					return
				}
				if t := targetGen.Load(); t > 0 && rep.Gen() >= t {
					break
				}
			}
			results <- verify(id, rep)
		}(i, sub)
	}

	// Real HTTP subscribers exercise the wire path end to end.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, d.handler())
	const httpSubs = 8
	for i := 0; i < httpSubs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("http://%s/subscribe?path=/", ln.Addr()))
			if err != nil {
				results <- smokeResult{id, err}
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
			rep := rib.NewReplayer()
			for sc.Scan() {
				var b rib.Batch
				if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
					results <- smokeResult{id, fmt.Errorf("http subscriber %d: %w", id, err)}
					return
				}
				if err := rep.Apply(b); err != nil {
					results <- smokeResult{id, fmt.Errorf("http subscriber %d: %w", id, err)}
					return
				}
				if t := targetGen.Load(); t > 0 && rep.Gen() >= t {
					results <- verify(id, rep)
					return
				}
			}
			results <- smokeResult{id, fmt.Errorf("http subscriber %d: stream ended early: %v", id, sc.Err())}
		}(subscribers + i)
	}

	// Continuous churn on this goroutine while subscribers stream; a
	// scrape per round keeps the observability plane live in smoke mode.
	for i := 0; i < rounds && d.ch != nil; i++ {
		d.mu.Lock()
		d.round()
		d.mu.Unlock()
		d.scrape()
	}
	d.mu.Lock()
	d.quiesce()
	d.mu.Unlock()

	// Publish the finish line, then one final audit so every subscriber
	// receives a batch at or past the target and can stop reading. The
	// audit rediscovers the identical fabric, so only the generation
	// number moves — expected values are computed for that final gen.
	finalGen := d.rib.Current().Gen + 1
	targetGen.Store(finalGen)
	d.mu.Lock()
	d.audit("smoke finish line")
	d.mu.Unlock()
	expectedOnce.Do(func() {
		cur := d.rib.Current()
		if cur.Gen != finalGen {
			// The audit installed more than once; re-target to reality.
			targetGen.Store(cur.Gen)
		}
		expectedCan = d.rib.Current().Canonical("/")
		expectedFP = d.m.DB().Fingerprint()
		close(expectedWait)
	})

	wg.Wait()
	close(results)
	failures := 0
	for r := range results {
		if r.err != nil {
			failures++
			if failures <= 10 {
				fmt.Fprintln(os.Stderr, r.err)
			}
		}
	}
	d.scrape()
	s := d.rib.Stats()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"topology":    d.cfg.Topology,
			"algorithm":   d.cfg.Kind().Slug(),
			"regions":     d.regions(),
			"rounds":      d.rounds,
			"generations": s.Gen,
			"installs":    s.Installs,
			"subscribers": subscribers + httpSubs,
			"resyncs":     s.Resyncs,
			"fingerprint": s.Fingerprint,
			"failures":    failures,
		})
	} else {
		fmt.Printf("asifmd smoke: %q %s: %d rounds, %d generations, %d+%d subscribers, %d resyncs, fingerprint %s: %d failures\n",
			d.cfg.Topology, d.cfg.Kind().Slug(), d.rounds, s.Gen, subscribers, httpSubs, s.Resyncs, s.Fingerprint, failures)
	}
	if failures > 0 {
		return fmt.Errorf("asifmd: %d of %d subscribers failed verification", failures, subscribers+httpSubs)
	}
	return nil
}
