// Command asifmd is the long-running fabric-manager daemon: it owns one
// simulated ASI fabric, keeps the discovery engine converged under
// continuous churn, installs every completed discovery into a versioned
// topology RIB, derives a FIB per generation, and streams JSON diffs to
// HTTP subscribers over gNMI-style paths.
//
// Usage:
//
//	asifmd                                   # defaults: 8-port 3-tree, :8080
//	asifmd -config daemon.json               # full config file
//	asifmd -topo "8x8 mesh" -listen :9000    # flag overrides
//	asifmd -rounds 100 -interval 250ms       # bounded churn, 4 rounds/s
//	asifmd -smoke 1000 -rounds 6             # verification mode (see below)
//
// Subscribe with any HTTP client:
//
//	curl -N 'http://localhost:8080/subscribe?path=/fib/routes'
//
// Smoke mode (-smoke N) runs the configured churn rounds while N
// in-process subscribers plus a set of real HTTP subscribers replay the
// diff stream concurrently, then verifies every reconstruction is
// byte-identical to the live snapshot and fingerprint-identical to the
// FM's database. It exits non-zero on any mismatch — `make daemon-smoke`
// is this mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/rib"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	var common cli.Common
	common.RegisterConfig(flag.CommandLine)
	common.RegisterJSON(flag.CommandLine)
	topoName := flag.String("topo", "", "override the config topology")
	alg := flag.String("alg", "", "override the config algorithm ("+
		"serial-packet, serial-device, parallel, partial; aliases sp, sd, p)")
	seed := flag.Uint64("seed", 0, "override the config seed")
	listen := flag.String("listen", "", "override the config listen address")
	rounds := flag.Int("rounds", 0, "override the config churn-round bound (0 = config value)")
	churnOps := flag.Int("churn-ops", -1, "override the config toggles per churn round")
	interval := flag.Duration("interval", time.Second, "wall-clock pause between churn rounds (serve mode)")
	smoke := flag.Int("smoke", 0, "smoke mode: N concurrent in-process subscribers, verify replay, exit")
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(2, err)
	}

	cfg, err := common.LoadDaemonConfig()
	if err != nil {
		fatal(2, err)
	}
	if *topoName != "" {
		cfg.Topology = *topoName
	}
	if *alg != "" {
		k, err := cli.Algorithm(*alg)
		if err != nil {
			fatal(2, err)
		}
		cfg.Algorithm = k.Slug()
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			cfg.Seed = *seed
		case "listen":
			cfg.Listen = *listen
		case "rounds":
			cfg.Rounds = *rounds
		case "churn-ops":
			cfg.ChurnOps = *churnOps
		}
	})
	if err := cfg.Validate(); err != nil {
		fatal(2, err)
	}

	d, err := newDaemon(cfg)
	if err != nil {
		fatal(1, err)
	}
	if err := d.bootstrap(); err != nil {
		fatal(1, err)
	}

	if *smoke > 0 {
		if err := d.runSmoke(*smoke, common.JSON); err != nil {
			fatal(1, err)
		}
		return
	}
	d.serve(*interval)
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(code)
}

// daemon owns the simulated fabric, its manager, and the serving layer.
// All simulation work happens on the goroutine calling its methods; the
// RIB decouples every reader from that hot path.
type daemon struct {
	cfg experiment.DaemonConfig
	e   *sim.Engine
	f   *fabric.Fabric
	m   *core.Manager
	rib *rib.RIB
	ch  *chaos.Churner

	installs int
	rounds   int
}

func newDaemon(cfg experiment.DaemonConfig) (*daemon, error) {
	tp, err := topo.ByName(cfg.Topology)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		cfg: cfg,
		e:   sim.NewEngine(),
		rib: rib.New(rib.Config{QueueDepth: cfg.QueueDepth}),
	}
	rng := sim.NewRNG(cfg.Seed*2654435761 + 1)
	d.f, err = fabric.New(d.e, tp, fabric.Config{}, rng)
	if err != nil {
		return nil, err
	}
	ep := d.f.Device(tp.Endpoints()[0])
	d.m = core.NewManager(d.f, ep, core.Options{Algorithm: cfg.Kind()})
	d.m.OnDiscoveryComplete = func(core.Result) {
		// The install is the cold-path bridge from simulation to serving:
		// clone the FM database, stamp a generation, fan out diffs.
		d.rib.Install(d.m.DB())
		d.installs++
	}
	if cfg.ChurnOps > 0 {
		d.ch, err = chaos.NewChurner(tp, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// bootstrap runs the transient period: initial discovery plus
// event-route distribution, producing RIB generation 1.
func (d *daemon) bootstrap() error {
	d.m.StartDiscovery()
	d.e.Run()
	if d.installs == 0 {
		return fmt.Errorf("asifmd: initial discovery on %q completed no run", d.cfg.Topology)
	}
	var distErr error
	d.m.DistributeEventRoutes(func(r core.DistResult) {
		if r.Failures > 0 {
			distErr = fmt.Errorf("asifmd: %d event-route distribution failures", r.Failures)
		}
	})
	d.e.Run()
	return distErr
}

// round applies one churn round and drains the simulation back to
// quiescence; PI-5 driven assimilation installs along the way.
func (d *daemon) round() {
	d.rounds++
	base := d.e.Now()
	for _, ev := range d.ch.Round(d.cfg.ChurnOps) {
		ev := ev
		d.e.At(base.Add(sim.Micros(ev.AtUS)), func(*sim.Engine) {
			if ev.Op == chaos.OpDown {
				d.f.SetDeviceDown(topo.NodeID(ev.Node), false)
			} else {
				d.f.SetDeviceUp(topo.NodeID(ev.Node), false)
			}
		})
	}
	d.e.Run()
	if n := d.cfg.AuditEvery; n > 0 && d.rounds%n == 0 {
		d.audit()
	}
}

// audit forces a full rediscovery (one more generation, even when the
// topology is unchanged).
func (d *daemon) audit() {
	d.m.StartDiscovery()
	d.e.Run()
}

// quiesce restores every churned-down switch and audits, making the
// served state the full topology again.
func (d *daemon) quiesce() {
	if d.ch == nil {
		return
	}
	base := d.e.Now()
	for _, ev := range d.ch.Quiesce() {
		ev := ev
		d.e.At(base.Add(sim.Micros(ev.AtUS)), func(*sim.Engine) {
			d.f.SetDeviceUp(topo.NodeID(ev.Node), false)
		})
	}
	d.e.Run()
	d.audit()
}

// serve streams forever (or for cfg.Rounds rounds): HTTP on cfg.Listen,
// churn rounds paced by interval on this goroutine.
func (d *daemon) serve(interval time.Duration) {
	ln, err := net.Listen("tcp", d.cfg.Listen)
	if err != nil {
		fatal(1, err)
	}
	go http.Serve(ln, rib.NewServer(d.rib).Handler())
	fmt.Fprintf(os.Stderr, "asifmd: managing %q (%s), serving on http://%s\n",
		d.cfg.Topology, d.cfg.Kind(), ln.Addr())

	for d.ch != nil && (d.cfg.Rounds == 0 || d.rounds < d.cfg.Rounds) {
		time.Sleep(interval)
		d.round()
		s := d.rib.Stats()
		fmt.Fprintf(os.Stderr, "asifmd: round %d gen %d leaves %d subscribers %d down %d\n",
			d.rounds, s.Gen, s.Leaves, s.Subscribers, d.ch.Down())
	}
	if d.ch == nil {
		fmt.Fprintln(os.Stderr, "asifmd: churn disabled; serving the initial discovery")
	} else {
		d.quiesce()
		fmt.Fprintf(os.Stderr, "asifmd: %d rounds done, fabric quiesced at gen %d; still serving\n",
			d.rounds, d.rib.Current().Gen)
	}
	select {} // serve until the process is stopped
}

// smokeResult is one subscriber's verdict.
type smokeResult struct {
	id  int
	err error
}

// runSmoke drives the configured churn while subscribers replay
// concurrently, then verifies every reconstruction.
func (d *daemon) runSmoke(subscribers int, jsonOut bool) error {
	rounds := d.cfg.Rounds
	if rounds == 0 {
		rounds = 6
	}

	// targetGen, once non-zero, is the generation at which a subscriber
	// stops reading; expected* are set before targetGen's batch is
	// published, so a subscriber that reached the target can compare.
	var (
		targetGen    atomic.Uint64
		expectedOnce sync.Once
		expectedWait = make(chan struct{})
		expectedCan  []byte
		expectedFP   uint64
	)
	verify := func(id int, rep *rib.Replayer) smokeResult {
		<-expectedWait
		if got := rep.Canonical("/"); string(got) != string(expectedCan) {
			return smokeResult{id, fmt.Errorf("subscriber %d: replayed state not byte-identical at gen %d", id, rep.Gen())}
		}
		fp, err := rep.Fingerprint()
		if err != nil {
			return smokeResult{id, fmt.Errorf("subscriber %d: %w", id, err)}
		}
		if fp != expectedFP {
			return smokeResult{id, fmt.Errorf("subscriber %d: fingerprint %#x, live DB %#x", id, fp, expectedFP)}
		}
		return smokeResult{id, nil}
	}

	results := make(chan smokeResult, subscribers+16)
	var wg sync.WaitGroup

	// In-process subscribers: the ISSUE's >= 1000 concurrent readers.
	for i := 0; i < subscribers; i++ {
		sub := d.rib.Subscribe("/")
		wg.Add(1)
		go func(id int, sub *rib.Subscription) {
			defer wg.Done()
			defer sub.Close()
			rep := rib.NewReplayer()
			for {
				b, ok := <-sub.Updates()
				if !ok {
					results <- smokeResult{id, fmt.Errorf("subscriber %d: stream closed early", id)}
					return
				}
				if err := rep.Apply(b); err != nil {
					results <- smokeResult{id, fmt.Errorf("subscriber %d: %w", id, err)}
					return
				}
				if t := targetGen.Load(); t > 0 && rep.Gen() >= t {
					break
				}
			}
			results <- verify(id, rep)
		}(i, sub)
	}

	// Real HTTP subscribers exercise the wire path end to end.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, rib.NewServer(d.rib).Handler())
	const httpSubs = 8
	for i := 0; i < httpSubs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("http://%s/subscribe?path=/", ln.Addr()))
			if err != nil {
				results <- smokeResult{id, err}
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
			rep := rib.NewReplayer()
			for sc.Scan() {
				var b rib.Batch
				if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
					results <- smokeResult{id, fmt.Errorf("http subscriber %d: %w", id, err)}
					return
				}
				if err := rep.Apply(b); err != nil {
					results <- smokeResult{id, fmt.Errorf("http subscriber %d: %w", id, err)}
					return
				}
				if t := targetGen.Load(); t > 0 && rep.Gen() >= t {
					results <- verify(id, rep)
					return
				}
			}
			results <- smokeResult{id, fmt.Errorf("http subscriber %d: stream ended early: %v", id, sc.Err())}
		}(subscribers + i)
	}

	// Continuous churn on this goroutine while subscribers stream.
	for i := 0; i < rounds && d.ch != nil; i++ {
		d.round()
	}
	d.quiesce()

	// Publish the finish line, then one final audit so every subscriber
	// receives a batch at or past the target and can stop reading. The
	// audit rediscovers the identical fabric, so only the generation
	// number moves — expected values are computed for that final gen.
	finalGen := d.rib.Current().Gen + 1
	targetGen.Store(finalGen)
	d.audit()
	expectedOnce.Do(func() {
		cur := d.rib.Current()
		if cur.Gen != finalGen {
			// The audit installed more than once; re-target to reality.
			targetGen.Store(cur.Gen)
		}
		expectedCan = d.rib.Current().Canonical("/")
		expectedFP = d.m.DB().Fingerprint()
		close(expectedWait)
	})

	wg.Wait()
	close(results)
	failures := 0
	for r := range results {
		if r.err != nil {
			failures++
			if failures <= 10 {
				fmt.Fprintln(os.Stderr, r.err)
			}
		}
	}
	s := d.rib.Stats()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"topology":    d.cfg.Topology,
			"algorithm":   d.cfg.Kind().Slug(),
			"rounds":      d.rounds,
			"generations": s.Gen,
			"installs":    s.Installs,
			"subscribers": subscribers + httpSubs,
			"resyncs":     s.Resyncs,
			"fingerprint": s.Fingerprint,
			"failures":    failures,
		})
	} else {
		fmt.Printf("asifmd smoke: %q %s: %d rounds, %d generations, %d+%d subscribers, %d resyncs, fingerprint %s: %d failures\n",
			d.cfg.Topology, d.cfg.Kind().Slug(), d.rounds, s.Gen, subscribers, httpSubs, s.Resyncs, s.Fingerprint, failures)
	}
	if failures > 0 {
		return fmt.Errorf("asifmd: %d of %d subscribers failed verification", failures, subscribers+httpSubs)
	}
	return nil
}
