// Command reportjson validates a machine-readable run report on stdin:
// it decodes the envelope strictly (unknown fields rejected), checks the
// schema version, table shapes and span-log invariants, and prints a
// one-line summary. It is the JSON-schema smoke check wired into
// `make verify`:
//
//	asidisc -topo "3x3 mesh" -telemetry -json | reportjson
//	asibench -exp table1 -json | reportjson
package main

import (
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	rr, err := experiment.DecodeRunReport(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	histograms := 0
	if rr.Telemetry != nil {
		histograms = len(rr.Telemetry.Histograms)
	}
	spans := 0
	if rr.Spans != nil {
		spans = len(rr.Spans.Spans)
	}
	fmt.Printf("ok: schema=%s reports=%d result=%v telemetry-histograms=%d spans=%d\n",
		rr.Schema, len(rr.Reports), rr.Result != nil, histograms, spans)
}
